  $ mascc targets | grep '^target'
  $ mascc kernels | awk '{print $1}'
  $ mascc compile fir_filter.m --args "double:1x64,double:1x8" -o fir.c --emit-header
  $ grep -c 'vmac_f64x8' fir.c
  $ head -c 2 masc_runtime.h
  $ cc -std=c99 -c fir.c -o fir.o && echo compiled
  $ mascc run fir_filter.m --args "double:1x64,double:1x8" | grep -E 'cycles:|ret0' | sed 's/ = .*/ = .../'
  $ mascc run fir_filter.m --args "double:1x64,double:1x8" --coder | grep 'cycles:'
  $ mascc compile fir_filter.m --args "double:1x64,double:1x8" --isa tiny.isa -o fir_tiny.c > /dev/null
  $ grep -c 't_st(' fir_tiny.c
  $ grep -c 'masc_v2f64' fir_tiny.c
  $ echo 'function y = f(x)
  > y = undefined_name + 1;
  > end' > bad.m
  $ mascc compile bad.m --entry f --args "double"
