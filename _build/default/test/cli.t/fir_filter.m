function y = fir_filter(x, h)
n = length(x);
m = length(h);
y = zeros(1, n - m + 1);
for i = 1:n-m+1
  acc = 0;
  for k = 1:m
    acc = acc + h(k) * x(i + k - 1);
  end
  y(i) = acc;
end
end
