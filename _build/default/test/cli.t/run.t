The mascc CLI lists its built-in targets:

  $ mascc targets | grep '^target'
  target scalar (scalar RISC-style core without custom instructions)
  target dsp4 (DSP ASIP, 4-lane f64 SIMD, complex-arithmetic ISEs)
  target dsp8 (DSP ASIP, 8-lane f64 SIMD, complex-arithmetic ISEs)
  target dsp16 (DSP ASIP, 16-lane f64 SIMD, complex-arithmetic ISEs)
  target dsp8_simd_only (DSP ASIP, 8-lane f64 SIMD)
  target dsp8_cplx_only (DSP ASIP, 8-lane f64 SIMD (SIMD ISEs disabled), complex-arithmetic ISEs)

Lists the bundled benchmark kernels:

  $ mascc kernels | awk '{print $1}'
  fir
  iir
  fft
  matmul
  xcorr
  fmdemod

Compiles a FIR filter to C with intrinsics:

  $ mascc compile fir_filter.m --args "double:1x64,double:1x8" -o fir.c --emit-header
  wrote fir.c
  wrote ./masc_runtime.h
  # 1 map loop(s) and 1 reduction loop(s) vectorized; 0 cmul, 0 cmac, 0 cadd selected

  $ grep -c 'vmac_f64x8' fir.c
  1

  $ head -c 2 masc_runtime.h
  /*

The generated C compiles with a host C compiler:

  $ cc -std=c99 -c fir.c -o fir.o && echo compiled
  compiled

Runs on the simulator with a cycle report:

  $ mascc run fir_filter.m --args "double:1x64,double:1x8" | grep -E 'cycles:|ret0' | sed 's/ = .*/ = .../'
  ret0 = ...
  cycles: 1285  (mode: proposed, target: dsp8)

The coder baseline is slower on the same input:

  $ mascc run fir_filter.m --args "double:1x64,double:1x8" --coder | grep 'cycles:'
  cycles: 8157  (mode: coder-baseline, target: dsp8)

Retargeting via a user .isa description changes the intrinsics:

  $ mascc compile fir_filter.m --args "double:1x64,double:1x8" --isa tiny.isa -o fir_tiny.c > /dev/null
  $ grep -c 't_st(' fir_tiny.c
  1
  $ grep -c 'masc_v2f64' fir_tiny.c
  1

Bad input produces a located diagnostic:

  $ echo 'function y = f(x)
  > y = undefined_name + 1;
  > end' > bad.m
  $ mascc compile bad.m --entry f --args "double"
  error: semantic analysis: line 2, columns 5-19: undefined variable 'undefined_name'
  [1]
