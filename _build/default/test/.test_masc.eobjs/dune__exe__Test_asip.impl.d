test/test_asip.ml: Alcotest List Masc_asip Masc_frontend Masc_mir Printf
