test/test_vm.ml: Alcotest Array Complex Float Hashtbl List Masc Masc_asip Masc_kernels Masc_mir Masc_sema Masc_vm Printf String
