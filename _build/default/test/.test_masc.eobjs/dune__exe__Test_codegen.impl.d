test/test_codegen.ml: Alcotest Array Complex Filename In_channel Lazy List Masc Masc_asip Masc_codegen Masc_kernels Masc_mir Masc_sema Masc_vm Mtype Printf String Sys Unix
