test/test_sema.ml: Alcotest Array Infer List Masc_frontend Masc_sema Mtype Tast
