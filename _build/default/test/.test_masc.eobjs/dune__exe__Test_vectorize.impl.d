test/test_vectorize.ml: Alcotest Array Infer List Masc_asip Masc_kernels Masc_mir Masc_opt Masc_sema Masc_vectorize Masc_vm Mtype Printf QCheck QCheck_alcotest String
