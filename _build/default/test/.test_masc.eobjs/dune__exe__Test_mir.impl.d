test/test_mir.ml: Alcotest Array Complex Format Infer Masc_asip Masc_mir Masc_sema Masc_vm Mtype Printf
