test/test_opt.ml: Alcotest Array Infer List Masc_asip Masc_frontend Masc_kernels Masc_mir Masc_opt Masc_sema Masc_vm Mtype Printf QCheck QCheck_alcotest String
