test/test_kernels.ml: Alcotest Array Complex Float Format List Masc Masc_asip Masc_kernels Masc_vectorize Masc_vm Option Printf
