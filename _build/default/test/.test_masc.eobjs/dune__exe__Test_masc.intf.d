test/test_masc.mli:
