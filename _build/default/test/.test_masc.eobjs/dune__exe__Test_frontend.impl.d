test/test_frontend.ml: Alcotest Ast Char Diag Lexer List Loc Masc_frontend Parser Pretty Printf QCheck QCheck_alcotest String Token
