test/test_masc.ml: Alcotest Test_asip Test_codegen Test_frontend Test_integration Test_kernels Test_mir Test_opt Test_sema Test_vectorize Test_vm
