(* Benchmark-kernel integration tests: each of the six DSP kernels is
   compiled with both the proposed flow and the coder baseline, executed
   on the simulator, checked against the golden OCaml reference, and the
   speedup shape of the paper (2x-30x overall) is asserted. *)

module K = Masc_kernels.Kernels
module I = Masc_vm.Interp
module V = Masc_vm.Value
module C = Masc.Compiler

let compile_kernel config (k : K.kernel) =
  C.compile config ~source:k.K.source ~entry:k.K.entry ~arg_types:k.K.arg_types

let scalars_of = function
  | I.Xarray a -> a
  | I.Xscalar s -> [| s |]

let check_against_golden ?(tol = 1e-6) name (k : K.kernel) config =
  let compiled = compile_kernel config k in
  let inputs = k.K.inputs () in
  let result = C.run compiled inputs in
  let expected = k.K.golden inputs in
  List.iter2
    (fun want got ->
      let w = scalars_of want and g = scalars_of got in
      Alcotest.(check int) (name ^ " length") (Array.length w) (Array.length g);
      Array.iteri
        (fun i x ->
          if not (V.close ~tol x g.(i)) then
            Alcotest.failf "%s[%d]: golden %s vs computed %s" name i
              (Format.asprintf "%a" V.pp_scalar x)
              (Format.asprintf "%a" V.pp_scalar g.(i)))
        w)
    expected result.I.rets;
  result

let test_kernel_correct (k : K.kernel) () =
  (* Proposed flow (dsp8), proposed flow without vectorization, and the
     coder baseline must all match the golden reference. *)
  ignore
    (check_against_golden (k.K.kname ^ " proposed") k (C.proposed ()));
  ignore
    (check_against_golden
       (k.K.kname ^ " scalar-proposed")
       k
       { (C.proposed ()) with C.isa = Masc_asip.Targets.scalar;
         vectorize = false; select_complex = false });
  ignore
    (check_against_golden (k.K.kname ^ " coder") k (C.coder_baseline ()))

let speedup (k : K.kernel) =
  let proposed = compile_kernel (C.proposed ()) k in
  let baseline = compile_kernel (C.coder_baseline ()) k in
  let inputs = k.K.inputs () in
  let pc = (C.run proposed inputs).I.cycles in
  let bc = (C.run baseline inputs).I.cycles in
  float_of_int bc /. float_of_int pc

let test_speedup_shape () =
  (* The paper reports 2x-30x across the six benchmarks; assert that
     shape: every kernel at least 1.5x, the best above 10x, overall
     range within sane bounds. *)
  let results =
    List.map (fun k -> (k.K.kname, speedup k)) (K.all ())
  in
  List.iter
    (fun (name, s) ->
      if s < 1.5 then
        Alcotest.failf "%s: speedup %.2f below the paper's band" name s;
      if s > 100.0 then
        Alcotest.failf "%s: speedup %.2f implausibly high" name s)
    results;
  let best = List.fold_left (fun m (_, s) -> Float.max m s) 0.0 results in
  let worst = List.fold_left (fun m (_, s) -> Float.min m s) infinity results in
  Alcotest.(check bool)
    (Printf.sprintf "best speedup %.1f exceeds 10x" best)
    true (best > 10.0);
  Alcotest.(check bool)
    (Printf.sprintf "worst speedup %.1f below 8x (spread)" worst)
    true (worst < 8.0)

let test_vectorization_happens () =
  (* FIR, xcorr and matmul must vectorize; fft and fmdemod must select
     complex ISEs; iir must survive unvectorized. *)
  let get name = Option.get (K.by_name name) in
  let vec k =
    (compile_kernel (C.proposed ()) k).C.vec_stats
  in
  let cplx k = (compile_kernel (C.proposed ()) k).C.cplx_stats in
  Alcotest.(check bool) "fir reduction loop" true
    ((vec (get "fir")).Masc_vectorize.Vectorizer.reduction_loops >= 1);
  Alcotest.(check bool) "xcorr reduction loop" true
    ((vec (get "xcorr")).Masc_vectorize.Vectorizer.reduction_loops >= 1);
  Alcotest.(check bool) "matmul map loop" true
    ((vec (get "matmul")).Masc_vectorize.Vectorizer.map_loops >= 1);
  Alcotest.(check bool) "fft cmul" true
    ((cplx (get "fft")).Masc_vectorize.Complex_sel.cmul >= 1);
  Alcotest.(check bool) "fmdemod cmul" true
    ((cplx (get "fmdemod")).Masc_vectorize.Complex_sel.cmul >= 1)

let test_fft_golden_is_a_dft () =
  (* Cross-check the golden FFT against a direct DFT on a small size. *)
  let n = 16 in
  let k = K.fft ~n () in
  let inputs = k.K.inputs () in
  let golden =
    match k.K.golden inputs with
    | [ I.Xarray a ] -> Array.map V.to_complex a
    | _ -> Alcotest.fail "fft golden shape"
  in
  let xr, xi =
    match inputs with
    | [ I.Xarray a; I.Xarray b ] ->
      (Array.map V.to_float a, Array.map V.to_float b)
    | _ -> Alcotest.fail "fft inputs"
  in
  for f = 0 to n - 1 do
    let acc = ref Complex.zero in
    for t = 0 to n - 1 do
      let ang = -2.0 *. Float.pi *. float_of_int (f * t) /. float_of_int n in
      let w = { Complex.re = cos ang; im = sin ang } in
      acc :=
        Complex.add !acc
          (Complex.mul { Complex.re = xr.(t); im = xi.(t) } w)
    done;
    if not (V.close ~tol:1e-8 (V.Sc !acc) (V.Sc golden.(f))) then
      Alcotest.failf "DFT[%d] mismatch: %g%+gi vs %g%+gi" f !acc.Complex.re
        !acc.Complex.im golden.(f).Complex.re golden.(f).Complex.im
  done

let test_sizes_parameterize () =
  (* Shrunk kernels still pass their goldens (static-shape respecialization). *)
  List.iter
    (fun k ->
      ignore (check_against_golden (k.K.kname ^ " small") k (C.proposed ())))
    [ K.fir ~n:64 ~m:8 (); K.fft ~n:32 (); K.matmul ~n:8 ();
      K.xcorr ~n:48 ~m:16 (); K.iir ~n:64 ~sections:2 (); K.fmdemod ~n:64 () ]

let suites =
  [ ( "kernels",
      List.map
        (fun k ->
          Alcotest.test_case (k.K.kname ^ " correct") `Quick
            (test_kernel_correct k))
        (K.all ())
      @ [ Alcotest.test_case "speedup shape (2x-30x)" `Slow test_speedup_shape;
          Alcotest.test_case "vectorization/selection happens" `Quick
            test_vectorization_happens;
          Alcotest.test_case "fft golden matches DFT" `Quick
            test_fft_golden_is_a_dft;
          Alcotest.test_case "size parameterization" `Quick
            test_sizes_parameterize ] ) ]
