(* Whole-pipeline integration tests through the Compiler driver. *)

open Masc_sema
module C = Masc.Compiler
module I = Masc_vm.Interp
module V = Masc_vm.Value
module K = Masc_kernels.Kernels

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_stage_dump () =
  let c =
    C.compile (C.proposed ())
      ~source:"function y = f(a, b)\ny = a .* b + 1;\nend"
      ~entry:"f"
      ~arg_types:
        [ Mtype.row_vector Mtype.Double 32; Mtype.row_vector Mtype.Double 32 ]
  in
  let dump = C.stage_dump c in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains ~needle dump))
    [ "typed entry signature"; "MIR after lowering"; "final MIR";
      "generated C"; "vectorized: "; "vmul_f64x8" ]

let test_config_matrix () =
  (* Every configuration (targets x opt levels x modes) compiles and
     computes the same values on a mixed kernel. *)
  let src =
    "function y = f(a)\n\
     n = length(a);\n\
     y = zeros(1, n);\n\
     s = 0;\n\
     for i = 1:n\n\
     s = s + a(i);\n\
     end\n\
     m = s / n;\n\
     for i = 1:n\n\
     y(i) = a(i) - m;\n\
     end\nend"
  in
  let args = [ Mtype.row_vector Mtype.Double 40 ] in
  let inputs = [ I.xarray_of_floats (K.randoms ~seed:99 40) ] in
  let reference = ref None in
  List.iter
    (fun config ->
      let c = C.compile config ~source:src ~entry:"f" ~arg_types:args in
      let r = C.run c inputs in
      match (r.I.rets, !reference) with
      | [ I.Xarray a ], None -> reference := Some a
      | [ I.Xarray a ], Some b ->
        Array.iteri
          (fun i x ->
            if not (V.close ~tol:1e-7 x b.(i)) then
              Alcotest.failf "config %s/%s: value mismatch at %d"
                config.C.isa.Masc_asip.Isa.tname
                (Masc_asip.Cost_model.mode_name config.C.mode)
                i)
          a
      | _ -> Alcotest.fail "expected one array return")
    ([ C.coder_baseline () ]
    @ List.concat_map
        (fun isa ->
          List.map
            (fun lvl -> { (C.proposed ~isa ()) with C.opt_level = lvl })
            [ Masc_opt.Pipeline.O0; Masc_opt.Pipeline.O1; Masc_opt.Pipeline.O2 ])
        [ Masc_asip.Targets.scalar; Masc_asip.Targets.dsp4;
          Masc_asip.Targets.dsp8; Masc_asip.Targets.dsp16 ])

let test_custom_isa_text () =
  (* Retarget via a user-written .isa description, end to end. *)
  let isa =
    Masc_asip.Isa_parser.parse
      {|target custom2
description "user description, 2-lane SIMD"
vector_width 2
cost alu 1
instr myadd simd.add lanes=2 latency=1
instr mymul simd.mul lanes=2 latency=1
instr myld simd.load lanes=2 latency=1
instr myst simd.store lanes=2 latency=1
instr mysplat simd.broadcast lanes=2 latency=1
|}
  in
  let c =
    C.compile (C.proposed ~isa ())
      ~source:"function y = f(a)\ny = a * 2 + 1;\nend" ~entry:"f"
      ~arg_types:[ Mtype.row_vector Mtype.Double 9 ]
  in
  Alcotest.(check bool) "vectorized on custom target" true
    (c.C.vec_stats.Masc_vectorize.Vectorizer.map_loops >= 1);
  let src = C.c_source c in
  Alcotest.(check bool) "user intrinsic names in C" true
    (contains ~needle:"mymul(" src);
  let r = C.run c [ I.xarray_of_floats (Array.init 9 float_of_int) ] in
  match r.I.rets with
  | [ I.Xarray a ] ->
    Array.iteri
      (fun i s ->
        Alcotest.(check (float 0.0))
          (Printf.sprintf "y[%d]" i)
          ((2.0 *. float_of_int i) +. 1.0)
          (V.to_float s))
      a
  | _ -> Alcotest.fail "expected one array"

let test_diagnostics_carry_spans () =
  let bad = "function y = f(x)\ny = undefined_thing + 1;\nend" in
  match
    C.compile (C.proposed ()) ~source:bad ~entry:"f" ~arg_types:[ Mtype.double ]
  with
  | exception Masc_frontend.Diag.Error (Masc_frontend.Diag.Sema, span, msg) ->
    Alcotest.(check bool) "mentions the name" true
      (contains ~needle:"undefined_thing" msg);
    Alcotest.(check bool) "span points at line 2" true
      (span.Masc_frontend.Loc.start_pos.Masc_frontend.Loc.line = 2)
  | _ -> Alcotest.fail "expected a semantic error"

let test_entry_not_found () =
  match
    C.compile (C.proposed ()) ~source:"function y = f()\ny = 1;\nend"
      ~entry:"nonexistent" ~arg_types:[]
  with
  | exception Masc_frontend.Diag.Error (Masc_frontend.Diag.Sema, _, _) -> ()
  | _ -> Alcotest.fail "expected an error for a missing entry point"

let test_cycles_scale_with_width () =
  (* Wider SIMD must not be slower on a long map kernel. *)
  let src = "function y = f(a, b)\ny = a .* b + a;\nend" in
  let args =
    [ Mtype.row_vector Mtype.Double 4096; Mtype.row_vector Mtype.Double 4096 ]
  in
  let inputs =
    [ I.xarray_of_floats (K.randoms ~seed:5 4096);
      I.xarray_of_floats (K.randoms ~seed:6 4096) ]
  in
  let cycles isa =
    let c = C.compile (C.proposed ~isa ()) ~source:src ~entry:"f" ~arg_types:args in
    (C.run c inputs).I.cycles
  in
  let c4 = cycles Masc_asip.Targets.dsp4 in
  let c8 = cycles Masc_asip.Targets.dsp8 in
  let c16 = cycles Masc_asip.Targets.dsp16 in
  Alcotest.(check bool)
    (Printf.sprintf "8 lanes (%d) <= 4 lanes (%d)" c8 c4)
    true (c8 <= c4);
  Alcotest.(check bool)
    (Printf.sprintf "16 lanes (%d) <= 8 lanes (%d)" c16 c8)
    true (c16 <= c8)

let base_suites =
  [ ( "integration",
      [ Alcotest.test_case "stage dump" `Quick test_stage_dump;
        Alcotest.test_case "config matrix equivalence" `Quick test_config_matrix;
        Alcotest.test_case "custom .isa retargeting" `Quick test_custom_isa_text;
        Alcotest.test_case "diagnostics carry spans" `Quick
          test_diagnostics_carry_spans;
        Alcotest.test_case "missing entry" `Quick test_entry_not_found;
        Alcotest.test_case "cycles scale with width" `Quick
          test_cycles_scale_with_width ] ) ]

(* --- deeper end-to-end properties --- *)

let farr = I.xarray_of_floats

let run_compiled ?(config = C.proposed ()) ~args src inputs =
  let c = C.compile config ~source:src ~entry:"f" ~arg_types:args in
  C.run c inputs

let prop_fft_parseval =
  (* Parseval's theorem on the compiled FFT: sum |x|^2 = (1/N) sum |X|^2.
     A strong numeric check of the whole pipeline on random inputs. *)
  let n = 64 in
  QCheck.Test.make ~count:25 ~name:"compiled FFT satisfies Parseval"
    QCheck.(make Gen.(int_range 0 10_000) ~print:string_of_int)
    (fun seed ->
      let k = K.fft ~n () in
      let xr = K.randoms ~seed n in
      let xi = K.randoms ~seed:(seed + 1) n in
      let c =
        C.compile (C.proposed ()) ~source:k.K.source ~entry:k.K.entry
          ~arg_types:k.K.arg_types
      in
      let r = C.run c [ farr xr; farr xi ] in
      match r.I.rets with
      | [ I.Xarray bins ] ->
        let e_time = ref 0.0 and e_freq = ref 0.0 in
        for i = 0 to n - 1 do
          e_time := !e_time +. (xr.(i) *. xr.(i)) +. (xi.(i) *. xi.(i));
          let z = V.to_complex bins.(i) in
          e_freq := !e_freq +. Complex.norm2 z
        done;
        Float.abs (!e_time -. (!e_freq /. float_of_int n))
        < 1e-9 *. Float.max 1.0 !e_time
      | _ -> false)

let prop_sort_correct =
  QCheck.Test.make ~count:50 ~name:"compiled sort = OCaml sort"
    QCheck.(make Gen.(pair (int_range 2 40) (int_range 0 10_000))
              ~print:(fun (n, s) -> Printf.sprintf "n=%d seed=%d" n s))
    (fun (n, seed) ->
      let input = K.randoms ~seed n in
      let src =
        Printf.sprintf "function y = f(x)\ny = sort(x);\nend"
      in
      let r =
        run_compiled
          ~args:[ Mtype.row_vector Mtype.Double n ]
          src [ farr input ]
      in
      match r.I.rets with
      | [ I.Xarray got ] ->
        let expected = Array.copy input in
        Array.sort compare expected;
        Array.for_all2
          (fun e g -> V.close (V.Sf e) g)
          expected got
      | _ -> false)

let test_slice_writes () =
  (* slice store with strides, 2-D slice store, gather read *)
  let r =
    run_compiled
      ~args:[ Mtype.row_vector Mtype.Double 4 ]
      "function y = f(v)\ny = zeros(1, 8);\ny(2:2:8) = v;\nend"
      [ farr [| 10.; 20.; 30.; 40. |] ]
  in
  (match r.I.rets with
  | [ I.Xarray a ] ->
    Alcotest.(check (array (float 1e-12)))
      "strided slice write"
      [| 0.; 10.; 0.; 20.; 0.; 30.; 0.; 40. |]
      (Array.map V.to_float a)
  | _ -> Alcotest.fail "expected array");
  let r =
    run_compiled ~args:[]
      "function y = f()\ny = zeros(3, 3);\ny(2, :) = 7;\ny(:, 1) = 5;\nend"
      []
  in
  (match r.I.rets with
  | [ I.Xarray a ] ->
    (* column-major 3x3: col1 = 5,5,5; col2 = 0,7,0; col3 = 0,7,0 *)
    Alcotest.(check (array (float 1e-12)))
      "2-D slice writes"
      [| 5.; 5.; 5.; 0.; 7.; 0.; 0.; 7.; 0. |]
      (Array.map V.to_float a)
  | _ -> Alcotest.fail "expected array");
  let r =
    run_compiled
      ~args:[ Mtype.row_vector Mtype.Double 5; Mtype.row_vector Mtype.Double 3 ]
      "function y = f(a, idx)\ny = a(idx);\nend"
      [ farr [| 10.; 20.; 30.; 40.; 50. |]; farr [| 4.; 1.; 5. |] ]
  in
  match r.I.rets with
  | [ I.Xarray a ] ->
    Alcotest.(check (array (float 1e-12)))
      "gather read" [| 40.; 10.; 50. |]
      (Array.map V.to_float a)
  | _ -> Alcotest.fail "expected array"

let test_early_return_in_callee_rejected () =
  let src =
    "function y = f(x)\ny = helper(x);\nend\n\
     function r = helper(v)\nr = 0;\nif v > 0\nr = 1;\nreturn;\nend\nr = 2;\nend"
  in
  match
    C.compile (C.proposed ()) ~source:src ~entry:"f" ~arg_types:[ Mtype.double ]
  with
  | exception Masc_frontend.Diag.Error (Masc_frontend.Diag.Lower, _, msg) ->
    Alcotest.(check bool) "message mentions return" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "early return in inlined callee must be diagnosed"

let test_extended_builtins_through_cc () =
  (* The generated C for a program using the extended builtins compiles
     and matches the simulator. *)
  if Sys.command "cc --version > /dev/null 2>&1" <> 0 then ()
  else begin
    let src =
      "function [s, m, p] = f(x)\n\
       s = std(x);\n\
       c = cumsum(sort(fliplr(x)));\n\
       m = mean(c);\n\
       [mx, p] = max(x);\n\
       end"
    in
    let n = 17 in
    let args = [ Mtype.row_vector Mtype.Double n ] in
    let c = C.compile (C.proposed ()) ~source:src ~entry:"f" ~arg_types:args in
    let input = K.randoms ~seed:123 n in
    let sim = C.run c [ farr input ] in
    let full =
      Masc_codegen.Harness.full_program ~isa:c.C.config.C.isa
        ~mode:c.C.config.C.mode c.C.mir
        [ Masc_codegen.Harness.Harray input ]
    in
    let dir = Filename.temp_file "mascx" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o755;
    let c_file = Filename.concat dir "p.c" in
    let oc = open_out c_file in
    output_string oc full;
    close_out oc;
    let exe = Filename.concat dir "p" in
    Alcotest.(check int) "cc ok" 0
      (Sys.command (Printf.sprintf "cc -std=c99 -O1 -o %s %s -lm" exe c_file));
    let ic = Unix.open_process_in exe in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    ignore (Unix.close_process_in ic);
    let c_vals =
      List.rev_map (fun l -> float_of_string (String.trim l)) !lines
    in
    let sim_vals =
      List.map
        (function
          | I.Xscalar s -> V.to_float s
          | I.Xarray _ -> Alcotest.fail "expected scalars")
        sim.I.rets
    in
    List.iteri
      (fun i (a, b) ->
        if not (V.close ~tol:1e-9 (V.Sf a) (V.Sf b)) then
          Alcotest.failf "output %d: C %.17g vs sim %.17g" i b a)
      (List.combine sim_vals c_vals)
  end

let extra_suites =
  [ ( "end-to-end properties",
      [ QCheck_alcotest.to_alcotest prop_fft_parseval;
        QCheck_alcotest.to_alcotest prop_sort_correct;
        Alcotest.test_case "slice writes and gather" `Quick test_slice_writes;
        Alcotest.test_case "early return in callee rejected" `Quick
          test_early_return_in_callee_rejected;
        Alcotest.test_case "extended builtins through cc" `Slow
          test_extended_builtins_through_cc ] ) ]

let suites = base_suites @ extra_suites
