(* Type / shape / constant inference tests. *)

open Masc_sema

let mty = Alcotest.testable Mtype.pp Mtype.equal

let infer ?(entry = "f") ~args src =
  Infer.infer_source src ~entry ~arg_types:args

let entry_ret ?(entry = "f") ~args src =
  let p = infer ~entry ~args src in
  let f = Tast.entry_func p in
  match f.Tast.trets with
  | (_, ty) :: _ -> ty
  | [] -> Alcotest.fail "entry has no returns"

let local_ty ?(entry = "f") ~args src name =
  let p = infer ~entry ~args src in
  let f = Tast.entry_func p in
  match List.assoc_opt name (f.Tast.tlocals @ f.Tast.tparams @ f.Tast.trets) with
  | Some ty -> ty
  | None -> Alcotest.failf "no variable '%s'" name

let expect_sema_error ?(entry = "f") ~args src =
  match infer ~entry ~args src with
  | exception Masc_frontend.Diag.Error (Masc_frontend.Diag.Sema, _, _) -> ()
  | _ -> Alcotest.failf "expected a semantic error on %S" src

let test_scalar_types () =
  Alcotest.check mty "int literal" Mtype.int_
    (entry_ret ~args:[] "function y = f()\ny = 3;\nend");
  Alcotest.check mty "float literal" Mtype.double
    (entry_ret ~args:[] "function y = f()\ny = 3.5;\nend");
  Alcotest.check mty "imaginary literal" Mtype.complex
    (entry_ret ~args:[] "function y = f()\ny = 2i;\nend");
  Alcotest.check mty "bool" Mtype.bool_
    (entry_ret ~args:[] "function y = f()\ny = true;\nend");
  Alcotest.check mty "arith promotes bool" Mtype.int_
    (entry_ret ~args:[] "function y = f()\ny = true + true;\nend");
  Alcotest.check mty "division is double" Mtype.double
    (entry_ret ~args:[] "function y = f()\ny = 3 / 4;\nend")

let test_const_shapes () =
  Alcotest.check mty "zeros" (Mtype.matrix Mtype.Double 2 3)
    (entry_ret ~args:[] "function y = f()\ny = zeros(2, 3);\nend");
  Alcotest.check mty "zeros from length"
    (Mtype.row_vector Mtype.Double 8)
    (entry_ret
       ~args:[ Mtype.row_vector Mtype.Double 8 ]
       "function y = f(x)\nn = length(x);\ny = zeros(1, n);\nend");
  Alcotest.check mty "size composition"
    (Mtype.matrix Mtype.Double 4 6)
    (entry_ret
       ~args:[ Mtype.matrix Mtype.Double 4 6 ]
       "function y = f(x)\n[r, c] = size(x);\ny = zeros(r, c);\nend");
  Alcotest.check mty "arithmetic on sizes"
    (Mtype.row_vector Mtype.Double 5)
    (entry_ret
       ~args:[ Mtype.row_vector Mtype.Double 8 ]
       "function y = f(x)\nn = length(x) / 2 + 1;\ny = zeros(1, n);\nend")

let test_ranges () =
  Alcotest.check mty "const range" (Mtype.row_vector Mtype.Int 10)
    (entry_ret ~args:[] "function y = f()\ny = 1:10;\nend");
  Alcotest.check mty "stepped range" (Mtype.row_vector Mtype.Int 5)
    (entry_ret ~args:[] "function y = f()\ny = 0:2:8;\nend");
  Alcotest.check mty "range from length"
    (Mtype.row_vector Mtype.Int 6)
    (entry_ret
       ~args:[ Mtype.row_vector Mtype.Double 6 ]
       "function y = f(x)\ny = 0:length(x)-1;\nend")

let test_indexing () =
  Alcotest.check mty "scalar read" Mtype.double
    (entry_ret
       ~args:[ Mtype.row_vector Mtype.Double 8 ]
       "function y = f(x)\ny = x(3);\nend");
  Alcotest.check mty "slice read" (Mtype.row_vector Mtype.Double 4)
    (entry_ret
       ~args:[ Mtype.row_vector Mtype.Double 8 ]
       "function y = f(x)\ny = x(2:5);\nend");
  Alcotest.check mty "slice with end" (Mtype.row_vector Mtype.Double 7)
    (entry_ret
       ~args:[ Mtype.row_vector Mtype.Double 8 ]
       "function y = f(x)\ny = x(2:end);\nend");
  Alcotest.check mty "dynamic window slice"
    (Mtype.row_vector Mtype.Double 3)
    (entry_ret
       ~args:[ Mtype.row_vector Mtype.Double 16 ]
       "function y = f(x)\nfor i = 1:14\ny = x(i:i+2);\nend\nend");
  Alcotest.check mty "matrix row" (Mtype.row_vector Mtype.Double 5)
    (entry_ret
       ~args:[ Mtype.matrix Mtype.Double 4 5 ]
       "function y = f(a)\ny = a(2, :);\nend");
  Alcotest.check mty "matrix column" (Mtype.col_vector Mtype.Double 4)
    (entry_ret
       ~args:[ Mtype.matrix Mtype.Double 4 5 ]
       "function y = f(a)\ny = a(:, 3);\nend");
  Alcotest.check mty "matrix element" Mtype.double
    (entry_ret
       ~args:[ Mtype.matrix Mtype.Double 4 5 ]
       "function y = f(a)\ny = a(2, 3);\nend")

let test_matrix_ops () =
  Alcotest.check mty "matmul"
    (Mtype.matrix Mtype.Double 2 4)
    (entry_ret
       ~args:[ Mtype.matrix Mtype.Double 2 3; Mtype.matrix Mtype.Double 3 4 ]
       "function y = f(a, b)\ny = a * b;\nend");
  Alcotest.check mty "dot product to scalar" Mtype.double
    (entry_ret
       ~args:
         [ Mtype.row_vector Mtype.Double 5; Mtype.col_vector Mtype.Double 5 ]
       "function y = f(a, b)\ny = a * b;\nend");
  Alcotest.check mty "transpose flips" (Mtype.col_vector Mtype.Double 5)
    (entry_ret
       ~args:[ Mtype.row_vector Mtype.Double 5 ]
       "function y = f(a)\ny = a';\nend");
  Alcotest.check mty "elementwise" (Mtype.row_vector Mtype.Double 5)
    (entry_ret
       ~args:[ Mtype.row_vector Mtype.Double 5; Mtype.row_vector Mtype.Double 5 ]
       "function y = f(a, b)\ny = a .* b + 2;\nend");
  expect_sema_error
    ~args:[ Mtype.matrix Mtype.Double 2 3; Mtype.matrix Mtype.Double 2 3 ]
    "function y = f(a, b)\ny = a * b;\nend";
  expect_sema_error
    ~args:[ Mtype.row_vector Mtype.Double 4; Mtype.row_vector Mtype.Double 5 ]
    "function y = f(a, b)\ny = a + b;\nend"

let test_complex_promotion () =
  Alcotest.check mty "complex arith" Mtype.complex
    (entry_ret ~args:[] "function y = f()\ny = (1 + 2i) * 3;\nend");
  Alcotest.check mty "real of complex" Mtype.double
    (entry_ret ~args:[] "function y = f()\ny = real(2 + 3i);\nend");
  Alcotest.check mty "abs of complex" Mtype.double
    (entry_ret ~args:[] "function y = f()\ny = abs(3 + 4i);\nend");
  (* Element writes promote the array, as in X = zeros(1,4); X(1) = 1i. *)
  Alcotest.check mty "store promotes array to complex"
    (Mtype.row_vector ~cplx:Mtype.Complex Mtype.Double 4)
    (entry_ret ~args:[]
       "function y = f()\ny = zeros(1, 4);\ny(1) = 2i;\nend");
  (* Loop-carried promotion requires the loop fixpoint. *)
  Alcotest.check mty "loop-carried complex promotion"
    (Mtype.scalar ~cplx:Mtype.Complex Mtype.Double)
    (local_ty ~args:[]
       "function y = f()\ns = 1;\nfor k = 1:3\ns = s * 1i;\nend\ny = s;\nend"
       "s")

let test_builtins () =
  Alcotest.check mty "sum of vector" Mtype.double
    (entry_ret
       ~args:[ Mtype.row_vector Mtype.Double 9 ]
       "function y = f(x)\ny = sum(x);\nend");
  Alcotest.check mty "sum of matrix is row"
    (Mtype.row_vector Mtype.Double 4)
    (entry_ret
       ~args:[ Mtype.matrix Mtype.Double 3 4 ]
       "function y = f(x)\ny = sum(x);\nend");
  Alcotest.check mty "length is const int" (Mtype.row_vector Mtype.Double 5)
    (entry_ret
       ~args:[ Mtype.col_vector Mtype.Double 5 ]
       "function y = f(x)\ny = zeros(1, length(x));\nend");
  Alcotest.check mty "elementwise sin"
    (Mtype.row_vector Mtype.Double 7)
    (entry_ret
       ~args:[ Mtype.row_vector Mtype.Double 7 ]
       "function y = f(x)\ny = sin(x);\nend");
  Alcotest.check mty "min of two vectors"
    (Mtype.row_vector Mtype.Double 7)
    (entry_ret
       ~args:
         [ Mtype.row_vector Mtype.Double 7; Mtype.row_vector Mtype.Double 7 ]
       "function y = f(a, b)\ny = min(a, b);\nend");
  Alcotest.check mty "pi" Mtype.double
    (entry_ret ~args:[] "function y = f()\ny = pi;\nend")

let test_control_flow () =
  (* Types join across branches. *)
  Alcotest.check mty "if joins base types" Mtype.double
    (local_ty
       ~args:[ Mtype.double ]
       "function y = f(x)\nif x > 0\nv = 1;\nelse\nv = 2.5;\nend\ny = v;\nend"
       "v");
  expect_sema_error
    ~args:[ Mtype.double ]
    "function y = f(x)\nif x > 0\nv = zeros(1, 3);\nelse\nv = zeros(1, 4);\nend\ny = v(1);\nend";
  (* While fixpoint promotes counters. *)
  Alcotest.check mty "while promotes to double" Mtype.double
    (local_ty
       ~args:[ Mtype.double ]
       "function y = f(x)\ns = 0;\nwhile s < x\ns = s + 0.5;\nend\ny = s;\nend"
       "s")

let test_user_functions () =
  let src =
    "function y = f(x)\n\
     y = twice(x) + twice(2.5);\n\
     end\n\
     function r = twice(v)\n\
     r = 2 * v;\n\
     end\n"
  in
  let p = infer ~args:[ Mtype.double ] src in
  (* f, twice(double scalar): the two twice calls share arg types except
     consts differ; const-bearing keys create distinct instances. *)
  Alcotest.(check bool)
    "at least two instances" true
    (Array.length p.Tast.instances >= 2);
  Alcotest.check mty "result" Mtype.double (entry_ret ~args:[ Mtype.double ] src)

let test_multi_return_functions () =
  let src =
    "function y = f(x)\n\
     [lo, hi] = bounds(x);\n\
     y = hi - lo;\n\
     end\n\
     function [a, b] = bounds(v)\n\
     a = min(v);\n\
     b = max(v);\n\
     end\n"
  in
  Alcotest.check mty "multi-return" Mtype.double
    (entry_ret ~args:[ Mtype.row_vector Mtype.Double 6 ] src)

let test_subset_errors () =
  expect_sema_error ~args:[] "function y = f()\ny = undefined_var;\nend";
  expect_sema_error ~args:[] "function y = f()\nz(3) = 1;\ny = 1;\nend";
  expect_sema_error ~args:[ Mtype.double ]
    "function y = f(n)\ny = zeros(1, n);\nend";
  expect_sema_error ~args:[] "function y = f()\ny = f();\nend";
  expect_sema_error
    ~args:[ Mtype.row_vector Mtype.Double 4 ]
    "function y = f(x)\nif x\ny = 1;\nelse\ny = 2;\nend\nend";
  expect_sema_error ~args:[] "function y = f()\ny = 'hello';\nend"

let test_shape_stability () =
  expect_sema_error ~args:[]
    "function y = f()\nx = zeros(1, 3);\nx = zeros(2, 2);\ny = x(1);\nend";
  (* Base-type changes are allowed. *)
  Alcotest.check mty "int then double rebind" Mtype.double
    (local_ty ~args:[]
       "function y = f()\nv = 1;\nv = 2.5;\ny = v;\nend" "v")

let suites =
  [ ( "sema",
      [ Alcotest.test_case "scalar types" `Quick test_scalar_types;
        Alcotest.test_case "constant shapes" `Quick test_const_shapes;
        Alcotest.test_case "ranges" `Quick test_ranges;
        Alcotest.test_case "indexing" `Quick test_indexing;
        Alcotest.test_case "matrix ops" `Quick test_matrix_ops;
        Alcotest.test_case "complex promotion" `Quick test_complex_promotion;
        Alcotest.test_case "builtins" `Quick test_builtins;
        Alcotest.test_case "control flow" `Quick test_control_flow;
        Alcotest.test_case "user functions" `Quick test_user_functions;
        Alcotest.test_case "multi-return" `Quick test_multi_return_functions;
        Alcotest.test_case "subset restrictions" `Quick test_subset_errors;
        Alcotest.test_case "shape stability" `Quick test_shape_stability ] ) ]
