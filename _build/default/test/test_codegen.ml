(* C emission tests: structural checks on the generated code, and —
   when a host C compiler is available — full compile-and-run
   equivalence between the generated C and the simulator. *)

open Masc_sema
module Mir = Masc_mir.Mir
module I = Masc_vm.Interp
module V = Masc_vm.Value
module C = Masc.Compiler
module K = Masc_kernels.Kernels
module H = Masc_codegen.Harness

let compile config ~args src =
  C.compile config ~source:src ~entry:"f" ~arg_types:args

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_c_structure_proposed () =
  let c =
    compile (C.proposed ())
      ~args:[ Mtype.row_vector Mtype.Double 64; Mtype.row_vector Mtype.Double 64 ]
      "function y = f(a, b)\ny = a .* b + 1;\nend"
  in
  let src = C.c_source c in
  Alcotest.(check bool) "includes runtime" true
    (contains ~needle:"#include \"masc_runtime.h\"" src);
  Alcotest.(check bool) "static array params" true
    (contains ~needle:"const double a_0[64]" src);
  Alcotest.(check bool) "vector intrinsics used" true
    (contains ~needle:"vmul_f64x8(" src);
  Alcotest.(check bool) "wide loads" true (contains ~needle:"vld_f64x8(" src);
  Alcotest.(check bool) "no bounds checks" false (contains ~needle:"masc_bc(" src)

let test_c_structure_coder () =
  let c =
    compile (C.coder_baseline ())
      ~args:[ Mtype.row_vector Mtype.Double 64; Mtype.row_vector Mtype.Double 64 ]
      "function y = f(a, b)\ny = a .* b + 1;\nend"
  in
  let src = C.c_source c in
  Alcotest.(check bool) "descriptor params" true
    (contains ~needle:"masc_emx a_0" src);
  Alcotest.(check bool) "bounds checks present" true
    (contains ~needle:"masc_bc(" src);
  Alcotest.(check bool) "no intrinsics" false (contains ~needle:"vmul_f64x8(" src)

let test_c_complex_intrinsics () =
  let c =
    compile (C.proposed ()) ~args:[ Mtype.complex; Mtype.complex ]
      "function y = f(a, b)\ny = a * b;\nend"
  in
  let src = C.c_source c in
  Alcotest.(check bool) "cmul intrinsic" true (contains ~needle:"cmul_f64(" src)

let test_runtime_header_self_contained () =
  let h = Masc_codegen.Runtime.header Masc_asip.Targets.dsp8 in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains ~needle h))
    [ "typedef struct { double re, im; } masc_cplx";
      "masc_v8f64"; "vadd_f64x8"; "vmac_f64x8"; "cmul_f64"; "masc_bc" ]

(* ---- compile-and-run equivalence via the host C compiler ---- *)

let cc_available =
  lazy (Sys.command "cc --version > /dev/null 2>&1" = 0)

let run_c_program source =
  let dir = Filename.temp_file "masc" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let c_file = Filename.concat dir "prog.c" in
  let exe = Filename.concat dir "prog" in
  let oc = open_out c_file in
  output_string oc source;
  close_out oc;
  let cmd =
    Printf.sprintf "cc -std=c99 -O1 -o %s %s -lm 2>%s/cc.log" exe c_file dir
  in
  if Sys.command cmd <> 0 then begin
    let log = In_channel.with_open_text (dir ^ "/cc.log") In_channel.input_all in
    Alcotest.failf "cc failed:\n%s" log
  end;
  let ic = Unix.open_process_in exe in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  ignore (Unix.close_process_in ic);
  List.rev !lines

let floats_of_lines lines =
  List.concat_map
    (fun line ->
      List.filter_map float_of_string_opt
        (String.split_on_char ' ' (String.trim line)))
    lines

let sim_floats (r : I.result) =
  List.concat_map
    (fun ret ->
      match ret with
      | I.Xscalar s -> (
        match s with
        | V.Sc z -> [ z.Complex.re; z.Complex.im ]
        | s -> [ V.to_float s ])
      | I.Xarray a ->
        Array.to_list a
        |> List.concat_map (fun s ->
               match s with
               | V.Sc z -> [ z.Complex.re; z.Complex.im ]
               | s -> [ V.to_float s ]))
    r.I.rets

let harness_inputs (k : K.kernel) =
  List.map
    (fun (x : I.xvalue) ->
      match x with
      | I.Xscalar (V.Sf f) -> H.Hscalar f
      | I.Xscalar (V.Si i) -> H.Hscalar (float_of_int i)
      | I.Xscalar (V.Sc z) -> H.Hcomplex z
      | I.Xscalar (V.Sb b) -> H.Hscalar (if b then 1.0 else 0.0)
      | I.Xarray a -> (
        match Array.length a > 0 && (match a.(0) with V.Sc _ -> true | _ -> false) with
        | true -> H.Hcarray (Array.map V.to_complex a)
        | false -> H.Harray (Array.map V.to_float a)))
    (k.K.inputs ())

let check_c_matches_simulator config (k : K.kernel) =
  if not (Lazy.force cc_available) then ()
  else begin
    let compiled =
      C.compile config ~source:k.K.source ~entry:k.K.entry
        ~arg_types:k.K.arg_types
    in
    let inputs = k.K.inputs () in
    let sim = C.run compiled inputs in
    let full =
      H.full_program ~isa:compiled.C.config.C.isa
        ~mode:compiled.C.config.C.mode compiled.C.mir (harness_inputs k)
    in
    let c_vals = floats_of_lines (run_c_program full) in
    let sim_vals = sim_floats sim in
    Alcotest.(check int)
      (k.K.kname ^ " output count")
      (List.length sim_vals) (List.length c_vals);
    List.iteri
      (fun i (a, b) ->
        if not (V.close ~tol:1e-9 (V.Sf a) (V.Sf b)) then
          Alcotest.failf "%s: C output %d: %.17g vs simulator %.17g" k.K.kname
            i b a)
      (List.combine sim_vals c_vals)
  end

let test_gcc_proposed_kernels () =
  (* Smaller sizes keep the embedded-initializer C files manageable. *)
  List.iter
    (check_c_matches_simulator (C.proposed ()))
    [ K.fir ~n:64 ~m:8 (); K.iir ~n:32 ~sections:2 (); K.fft ~n:32 ();
      K.matmul ~n:6 (); K.xcorr ~n:48 ~m:8 (); K.fmdemod ~n:40 () ]

let test_gcc_coder_kernels () =
  List.iter
    (check_c_matches_simulator (C.coder_baseline ()))
    [ K.fir ~n:64 ~m:8 (); K.fft ~n:32 (); K.matmul ~n:6 () ]

let test_gcc_widths () =
  (* The same program retargeted across vector widths still matches. *)
  List.iter
    (fun isa ->
      check_c_matches_simulator
        (C.proposed ~isa ())
        (K.fir ~n:64 ~m:8 ()))
    [ Masc_asip.Targets.dsp4; Masc_asip.Targets.dsp16;
      Masc_asip.Targets.dsp8_simd_only; Masc_asip.Targets.dsp8_cplx_only ]

let suites =
  [ ( "codegen",
      [ Alcotest.test_case "proposed C structure" `Quick
          test_c_structure_proposed;
        Alcotest.test_case "coder C structure" `Quick test_c_structure_coder;
        Alcotest.test_case "complex intrinsics in C" `Quick
          test_c_complex_intrinsics;
        Alcotest.test_case "runtime header" `Quick
          test_runtime_header_self_contained;
        Alcotest.test_case "cc run matches simulator (proposed)" `Slow
          test_gcc_proposed_kernels;
        Alcotest.test_case "cc run matches simulator (coder)" `Slow
          test_gcc_coder_kernels;
        Alcotest.test_case "cc run across widths" `Slow test_gcc_widths ] ) ]
