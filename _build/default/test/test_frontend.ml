(* Lexer and parser tests, plus the parser round-trip property. *)

open Masc_frontend

let kinds src =
  List.map (fun (t : Token.t) -> t.Token.kind) (Lexer.tokenize src)

let check_kinds name src expected =
  Alcotest.(check (list string))
    name
    (List.map Token.describe expected)
    (List.map Token.describe (kinds src))

(* --- lexer --- *)

let test_lex_numbers () =
  check_kinds "integers and floats" "1 2.5 .5 1e3 2.5e-2 1."
    [ NUM 1.; NUM 2.5; NUM 0.5; NUM 1000.; NUM 0.025; NUM 1.; EOF ];
  check_kinds "imaginary" "2i 3.5j 1e2i" [ IMAG 2.; IMAG 3.5; IMAG 100.; EOF ];
  check_kinds "number then elementwise op" "2.*x"
    [ NUM 2.; DOTSTAR; IDENT "x"; EOF ]

let test_lex_operators () =
  check_kinds "comparisons" "a<=b~=c==d"
    [ IDENT "a"; LE; IDENT "b"; NE; IDENT "c"; EQ; IDENT "d"; EOF ];
  check_kinds "logical" "a&&b||c&d|e~f"
    [ IDENT "a"; AMPAMP; IDENT "b"; BARBAR; IDENT "c"; AMP; IDENT "d"; BAR;
      IDENT "e"; NOT; IDENT "f"; EOF ];
  check_kinds "elementwise" "a.*b./c.\\d.^e"
    [ IDENT "a"; DOTSTAR; IDENT "b"; DOTSLASH; IDENT "c"; DOTBACKSLASH;
      IDENT "d"; DOTCARET; IDENT "e"; EOF ]

let test_lex_quote_ambiguity () =
  check_kinds "transpose after ident" "a'" [ IDENT "a"; QUOTE; EOF ];
  check_kinds "transpose after paren" "(a)'"
    [ LPAREN; IDENT "a"; RPAREN; QUOTE; EOF ];
  check_kinds "string after assign" "x = 'ab'"
    [ IDENT "x"; ASSIGN; STR "ab"; EOF ];
  check_kinds "string with escaped quote" "x = 'a''b'"
    [ IDENT "x"; ASSIGN; STR "a'b"; EOF ];
  check_kinds "string at call" "f('s')"
    [ IDENT "f"; LPAREN; STR "s"; RPAREN; EOF ];
  check_kinds "double transpose" "a''" [ IDENT "a"; QUOTE; QUOTE; EOF ];
  check_kinds "dot transpose" "a.'" [ IDENT "a"; DOTQUOTE; EOF ]

let test_lex_comments_continuation () =
  check_kinds "line comment" "a % comment\nb"
    [ IDENT "a"; NEWLINE; IDENT "b"; EOF ];
  check_kinds "block comment" "a\n%{\nstuff\n%}\nb"
    [ IDENT "a"; NEWLINE; IDENT "b"; EOF ];
  check_kinds "continuation" "a + ...\n  b" [ IDENT "a"; PLUS; IDENT "b"; EOF ];
  check_kinds "continuation with trailing comment" "a + ... comment\nb"
    [ IDENT "a"; PLUS; IDENT "b"; EOF ]

let test_lex_newlines () =
  check_kinds "collapsed newlines" "a\n\n\nb" [ IDENT "a"; NEWLINE; IDENT "b"; EOF ];
  check_kinds "leading newlines dropped" "\n\na" [ IDENT "a"; EOF ]

let test_lex_keywords () =
  check_kinds "keywords" "function if elseif else for while break continue return end true false"
    [ FUNCTION; IF; ELSEIF; ELSE; FOR; WHILE; BREAK; CONTINUE; RETURN; END;
      TRUE; FALSE; EOF ]

let test_lex_spacing_flag () =
  let toks = Lexer.tokenize "[1 -2]" in
  let spaced =
    List.map (fun (t : Token.t) -> t.Token.spaced_before) toks
  in
  Alcotest.(check (list bool))
    "spaced_before for [1 -2]"
    [ false; false; true; false; false; false ]
    spaced

let test_lex_errors () =
  let expect_error src =
    match Lexer.tokenize src with
    | exception Diag.Error (Diag.Lex, _, _) -> ()
    | _ -> Alcotest.failf "expected lex error on %S" src
  in
  expect_error "'unterminated";
  expect_error "a $ b";
  expect_error "%{ never closed"

(* --- parser --- *)

let roundtrip src = Pretty.expr_to_string (Parser.parse_expr src)

let check_expr name src expected =
  Alcotest.(check string) name expected (roundtrip src)

let test_parse_precedence () =
  check_expr "mul before add" "1+2*3" "1 + 2 * 3";
  check_expr "parens preserved" "(1+2)*3" "(1 + 2) * 3";
  check_expr "power before unary" "-2^2" "-2 ^ 2";
  check_expr "power right operand signed" "2^-1" "2 ^ (-1)";
  check_expr "power left assoc" "2^3^2" "2 ^ 3 ^ 2";
  check_expr "power right nested parens kept" "2^(3^2)" "2 ^ (3 ^ 2)";
  check_expr "colon below add" "1:n+1" "1:n + 1";
  check_expr "colon with step" "1:2:9" "1:2:9";
  check_expr "compare below colon" "1:3 == 2" "1:3 == 2";
  check_expr "and/or precedence" "a || b && c" "a || b && c";
  check_expr "elementwise" "a .* b ./ c" "a .* b ./ c";
  check_expr "left division" "a \\ b" "a \\ b"

let test_parse_postfix () =
  check_expr "transpose" "a'" "a'";
  check_expr "transpose of call" "f(x)'" "f(x)'";
  check_expr "transpose binds tight" "a' * b" "a' * b";
  check_expr "dot transpose" "a.'" "a.'";
  check_expr "indexing" "a(1, 2)" "a(1, 2)";
  check_expr "nested calls" "f(g(x), h(y))" "f(g(x), h(y))";
  check_expr "colon index" "a(:, 2)" "a(:, 2)";
  check_expr "end arithmetic" "a(end - 1)" "a(end - 1)";
  check_expr "range index" "a(1:end)" "a(1:end)"

let test_parse_matrix () =
  check_expr "row vector" "[1, 2, 3]" "[1, 2, 3]";
  check_expr "matrix rows" "[1 2; 3 4]" "[1, 2; 3, 4]";
  check_expr "juxtaposed elements" "[1 2 3]" "[1, 2, 3]";
  check_expr "space-minus is element" "[1 -2]" "[1, -2]";
  check_expr "spaced minus is subtraction" "[1 - 2]" "[1 - 2]";
  check_expr "tight minus is subtraction" "[1-2]" "[1 - 2]";
  check_expr "newline rows" "[1 2\n3 4]" "[1, 2; 3, 4]";
  check_expr "empty matrix" "[]" "[]";
  check_expr "nested brackets" "[[1, 2], 3]" "[[1, 2], 3]";
  check_expr "expressions inside" "[a + b, f(c)]" "[a + b, f(c)]";
  check_expr "paren disables element break" "[(1 -2)]" "[1 - 2]"

let parse_ok src =
  try Parser.parse_program src
  with Diag.Error _ as e -> Alcotest.failf "parse failed: %s" (Diag.to_string e)

let test_parse_statements () =
  let p = parse_ok "x = 1; y = x + 2\nz(3) = y;" in
  (match p.Ast.funcs with
  | [ f ] ->
    Alcotest.(check string) "script name" "__script__" f.Ast.fname;
    Alcotest.(check int) "three statements" 3 (List.length f.Ast.body)
  | _ -> Alcotest.fail "expected one pseudo-function");
  let p2 = parse_ok "if x > 0\n y = 1;\nelseif x < 0\n y = 2;\nelse\n y = 3;\nend" in
  match (List.hd p2.Ast.funcs).Ast.body with
  | [ { Ast.sdesc = Ast.If (arms, els); _ } ] ->
    Alcotest.(check int) "two arms" 2 (List.length arms);
    Alcotest.(check int) "else present" 1 (List.length els)
  | _ -> Alcotest.fail "expected a single if statement"

let test_parse_loops () =
  let p = parse_ok "for i = 1:10\n s = s + i;\nend\nwhile s > 0\n s = s - 1;\nend" in
  match (List.hd p.Ast.funcs).Ast.body with
  | [ { Ast.sdesc = Ast.For (v, _, body); _ };
      { Ast.sdesc = Ast.While (_, wbody); _ } ] ->
    Alcotest.(check string) "loop var" "i" v;
    Alcotest.(check int) "for body" 1 (List.length body);
    Alcotest.(check int) "while body" 1 (List.length wbody)
  | _ -> Alcotest.fail "expected for then while"

let test_parse_functions () =
  let src =
    "function y = f(x)\n y = x + 1;\nend\nfunction [a, b] = g(u, v)\n a = u; b = v;\nend\n"
  in
  let p = parse_ok src in
  (match p.Ast.funcs with
  | [ f; g ] ->
    Alcotest.(check (list string)) "f params" [ "x" ] f.Ast.params;
    Alcotest.(check (list string)) "f returns" [ "y" ] f.Ast.returns;
    Alcotest.(check (list string)) "g returns" [ "a"; "b" ] g.Ast.returns;
    Alcotest.(check (list string)) "g params" [ "u"; "v" ] g.Ast.params
  | _ -> Alcotest.fail "expected two functions");
  (* Function without closing end and without returns. *)
  let p2 = parse_ok "function main()\nx = 1;\n" in
  Alcotest.(check int) "one function" 1 (List.length p2.Ast.funcs)

let test_parse_multi_assign () =
  let p = parse_ok "[q, r] = divmod(a, b);" in
  match (List.hd p.Ast.funcs).Ast.body with
  | [ { Ast.sdesc = Ast.Multi_assign (lvs, _); _ } ] ->
    Alcotest.(check (list string))
      "targets" [ "q"; "r" ]
      (List.map (fun (lv : Ast.lvalue) -> lv.Ast.base) lvs)
  | _ -> Alcotest.fail "expected a multi-assignment"

let test_parse_errors () =
  let expect_error src =
    match Parser.parse_program src with
    | exception Diag.Error (Diag.Parse, _, _) -> ()
    | _ -> Alcotest.failf "expected parse error on %S" src
  in
  expect_error "x = ;";
  expect_error "if x\ny = 1;";
  (* missing end *)
  expect_error "1 = x;";
  expect_error "for = 1:3\nend";
  expect_error "x = end;"
(* 'end' outside index *)

(* --- property: pretty ∘ parse round-trip --- *)

let gen_expr : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let mk d = Ast.mk Loc.dummy d in
  let leaf =
    oneof
      [ map (fun n -> mk (Ast.Num (float_of_int n))) (int_range 0 99);
        map (fun v -> mk (Ast.Var v)) (oneofl [ "x"; "y"; "z"; "acc" ]);
        return (mk (Ast.Bool true));
        map (fun n -> mk (Ast.Imag (float_of_int n))) (int_range 1 9) ]
  in
  let binops =
    [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Emul; Ast.Ediv; Ast.Lt; Ast.Ge;
      Ast.Eq; Ast.And; Ast.Oror; Ast.Pow ]
  in
  fix
    (fun self n ->
      if n = 0 then leaf
      else
        frequency
          [ (3, leaf);
            ( 4,
              map3
                (fun op a b -> mk (Ast.Binop (op, a, b)))
                (oneofl binops) (self (n / 2)) (self (n / 2)) );
            (1, map (fun a -> mk (Ast.Unop (Ast.Uneg, a))) (self (n - 1)));
            ( 1,
              map
                (fun a -> mk (Ast.Transpose (Ast.Ctranspose, a)))
                (self (n - 1)) );
            ( 1,
              map2
                (fun f args -> mk (Ast.Apply (f, args)))
                (oneofl [ "f"; "sin"; "zeros" ])
                (list_size (int_range 1 3) (self (n / 3))) );
            ( 1,
              map2
                (fun lo hi -> mk (Ast.Range (lo, None, hi)))
                (self (n / 2)) (self (n / 2)) );
            ( 1,
              map
                (fun rows -> mk (Ast.Matrix rows))
                (list_size (int_range 1 2)
                   (list_size (int_range 1 3) (self (n / 3)))) ) ])
    5

let prop_roundtrip =
  QCheck.Test.make ~count:500 ~name:"pretty-print then parse is identity"
    (QCheck.make gen_expr ~print:Pretty.expr_to_string)
    (fun e ->
      let printed = Pretty.expr_to_string e in
      let reparsed = Parser.parse_expr printed in
      String.equal printed (Pretty.expr_to_string reparsed))

let base_suites =
  [ ( "lexer",
      [ Alcotest.test_case "numbers" `Quick test_lex_numbers;
        Alcotest.test_case "operators" `Quick test_lex_operators;
        Alcotest.test_case "quote ambiguity" `Quick test_lex_quote_ambiguity;
        Alcotest.test_case "comments and continuation" `Quick
          test_lex_comments_continuation;
        Alcotest.test_case "newlines" `Quick test_lex_newlines;
        Alcotest.test_case "keywords" `Quick test_lex_keywords;
        Alcotest.test_case "spacing flag" `Quick test_lex_spacing_flag;
        Alcotest.test_case "errors" `Quick test_lex_errors ] );
    ( "parser",
      [ Alcotest.test_case "precedence" `Quick test_parse_precedence;
        Alcotest.test_case "postfix" `Quick test_parse_postfix;
        Alcotest.test_case "matrix literals" `Quick test_parse_matrix;
        Alcotest.test_case "statements" `Quick test_parse_statements;
        Alcotest.test_case "loops" `Quick test_parse_loops;
        Alcotest.test_case "functions" `Quick test_parse_functions;
        Alcotest.test_case "multi-assign" `Quick test_parse_multi_assign;
        Alcotest.test_case "errors" `Quick test_parse_errors;
        QCheck_alcotest.to_alcotest prop_roundtrip ] ) ]

(* --- robustness: the front end never crashes, it diagnoses --- *)

let gen_garbage : string QCheck.Gen.t =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 9 126)) (int_range 0 80))

let prop_lexer_total =
  QCheck.Test.make ~count:1000 ~name:"lexer: any input either lexes or raises Diag.Error"
    (QCheck.make gen_garbage ~print:(Printf.sprintf "%S"))
    (fun s ->
      match Lexer.tokenize s with
      | _ -> true
      | exception Diag.Error (Diag.Lex, _, _) -> true)

let gen_tokenish : string QCheck.Gen.t =
  (* Strings over the language's own vocabulary stress the parser. *)
  let open QCheck.Gen in
  let word =
    oneofl
      [ "x"; "y"; "f"; "1"; "2.5"; "("; ")"; "["; "]"; ","; ";"; ":"; "=";
        "+"; "-"; "*"; "/"; "'"; "end"; "for"; "if"; "else"; "while"; "\n";
        "function"; "=="; "~="; "&&"; ".*"; "break"; "switch"; "case"; " " ]
  in
  map (String.concat " ") (list_size (int_range 0 30) word)

let prop_parser_total =
  QCheck.Test.make ~count:1000
    ~name:"parser: any token soup either parses or raises Diag.Error"
    (QCheck.make gen_tokenish ~print:(Printf.sprintf "%S"))
    (fun s ->
      match Parser.parse_program s with
      | _ -> true
      | exception Diag.Error ((Diag.Lex | Diag.Parse), _, _) -> true)

let switch_parses () =
  let p =
    Parser.parse_program
      "function y = f(x)\nswitch x\ncase 1\ny = 1;\ncase 2\ny = 4;\notherwise\ny = 0;\nend\nend"
  in
  match (List.hd p.Ast.funcs).Ast.body with
  | [ { Ast.sdesc = Ast.If (arms, els); _ } ] ->
    Alcotest.(check int) "two case arms" 2 (List.length arms);
    Alcotest.(check bool) "otherwise present" true (els <> []);
    (* each arm condition is scrutinee == value *)
    List.iter
      (fun ((cond : Ast.expr), _) ->
        match cond.Ast.desc with
        | Ast.Binop (Ast.Eq, _, _) -> ()
        | _ -> Alcotest.fail "case arm is not an equality")
      arms
  | _ -> Alcotest.fail "switch should desugar to an if chain"

let robustness_suites =
  [ ( "frontend robustness",
      [ QCheck_alcotest.to_alcotest prop_lexer_total;
        QCheck_alcotest.to_alcotest prop_parser_total;
        Alcotest.test_case "switch desugars" `Quick switch_parses ] ) ]

let suites = base_suites @ robustness_suites
